"""IR node definitions.

The IR is an abstract syntax tree of statement nodes (Sec. 4.4): loop
nests (``For``), conditionals (``IfThenElse``), DMA transfers
(``DmaCg`` and its inferred per-CPE form), tensorized computation
(``GemmOp``), auxiliary compute stages (``ComputeOp``), SPM allocation
(``AllocSpm``) and the prefetch construct the latency-hiding pass
introduces.  Schedule strategies and optimizations are expressed as
mutations over this tree.

Design notes:

* loop variables are plain strings; all index arithmetic is affine
  (:mod:`repro.ir.expr`), which is what makes DMA inference and
  auto-prefetching decidable;
* extents are *static* integers -- swATOP generates one kernel per
  parameter configuration, so shapes are known at schedule time;
* ``GemmOp`` references SPM buffers by name plus an axis *map*
  describing how the logical tile dims flatten into matrix rows/cols
  (e.g. the implicit-conv N dimension is the fusion of batch and the
  spatial tile).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import IrError
from ..primitives.microkernel import KernelVariant
from .expr import AffineExpr, Cond


class Node:
    """Base class of all IR statements."""

    def children(self) -> List["Node"]:
        return []

    def with_children(self, children: List["Node"]) -> "Node":
        if children:
            raise IrError(f"{type(self).__name__} takes no children")
        return self


# ---------------------------------------------------------------------------
# structure
# ---------------------------------------------------------------------------
@dataclass
class SeqNode(Node):
    """Ordered sequence of statements."""

    body: List[Node] = field(default_factory=list)

    def children(self) -> List[Node]:
        return list(self.body)

    def with_children(self, children: List[Node]) -> "SeqNode":
        return SeqNode(list(children))


@dataclass
class ForNode(Node):
    """``for var in range(extent)`` (splits normalise min=0, step=1).

    ``pipelined`` marks a loop whose body has been double-buffered by
    the prefetch pass; the executor then lets DMA issued for iteration
    ``i+1`` overlap computation of iteration ``i``.
    """

    var: str
    extent: int
    body: Node = field(default_factory=SeqNode)
    pipelined: bool = False

    def __post_init__(self) -> None:
        if self.extent < 0:
            raise IrError(f"negative loop extent for {self.var!r}")

    def children(self) -> List[Node]:
        return [self.body]

    def with_children(self, children: List[Node]) -> "ForNode":
        (body,) = children
        return ForNode(self.var, self.extent, body, self.pipelined)


@dataclass
class IfThenElseNode(Node):
    cond: Cond
    then_body: Node = field(default_factory=SeqNode)
    else_body: Optional[Node] = None

    def children(self) -> List[Node]:
        out = [self.then_body]
        if self.else_body is not None:
            out.append(self.else_body)
        return out

    def with_children(self, children: List[Node]) -> "IfThenElseNode":
        if len(children) == 1:
            return IfThenElseNode(self.cond, children[0], None)
        then_body, else_body = children
        return IfThenElseNode(self.cond, then_body, else_body)


# ---------------------------------------------------------------------------
# memory
# ---------------------------------------------------------------------------
@dataclass
class AllocSpmNode(Node):
    """Reserve an SPM tile buffer for the kernel's lifetime.

    ``shape`` is the logical tile shape; ``matrix_layout`` records how
    the 2-D matrix view is stored (drives kernel-variant legality and
    the emitted leading dimension); ``distributed`` tiles are split 8x8
    across the cluster, replicated ones live whole on every CPE.
    """

    name: str
    shape: Tuple[int, ...]
    matrix_layout: str = "row_major"
    double_buffered: bool = False
    distributed: bool = True

    def __post_init__(self) -> None:
        if any(int(s) <= 0 for s in self.shape):
            raise IrError(f"non-positive extent in SPM alloc {self.name!r}")
        self.shape = tuple(int(s) for s in self.shape)

    @property
    def elems(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n


@dataclass(frozen=True)
class TileAccess:
    """A rectangular window of a main-memory tensor.

    One ``(offset, length)`` pair per tensor dimension; offsets are
    affine in the enclosing loop variables.
    """

    buffer: str
    dims: Tuple[Tuple[AffineExpr, int], ...]

    def __post_init__(self) -> None:
        for off, length in self.dims:
            if not isinstance(off, AffineExpr):
                raise IrError("tile offsets must be AffineExpr")
            if length <= 0:
                raise IrError(f"non-positive tile extent {length}")

    @property
    def lengths(self) -> Tuple[int, ...]:
        return tuple(length for _, length in self.dims)

    @property
    def elems(self) -> int:
        n = 1
        for length in self.lengths:
            n *= length
        return n

    def variables(self) -> frozenset:
        vs: frozenset = frozenset()
        for off, _ in self.dims:
            vs |= off.variables
        return vs


@dataclass(frozen=True)
class DmaGeometry:
    """Static DMA access shape filled in by the inference pass."""

    n_blocks: int          # contiguous blocks per CG transfer
    block_bytes: int       # bytes per contiguous block
    stride_bytes: int      # gap between blocks (0 = continuous)
    n_descriptors: int     # per-CPE descriptors issued


@dataclass
class DmaCgNode(Node):
    """Core-group-level DMA of a tensor tile to/from an SPM buffer.

    Users never write these: the DMA-inference pass injects them from
    tile accesses (Sec. 4.5.1) and derives the per-CPE descriptor
    geometry.  A node with ``reply`` set is asynchronous (issued, then
    awaited by a matching :class:`DmaWaitNode`); without, it blocks.
    """

    access: TileAccess
    spm: str
    direction: str  # machine.dma.MEM_TO_SPM / SPM_TO_MEM
    reply: Optional[str] = None
    geometry: Optional[DmaGeometry] = None
    #: filled by inference: which SPM buffer phase to use under double
    #: buffering is decided at run time; this records the alternation var.
    phase_var: Optional[str] = None


@dataclass
class DmaWaitNode(Node):
    """``swDMAWait(reply, times)``."""

    reply: str
    times: int = 1


@dataclass
class PrefetchNode(Node):
    """Issue the DMA(s) for the *next* iteration of the enclosing loop
    nest into the alternate buffer phase.

    ``loops`` lists (var, extent) pairs innermost-first; advancing the
    index vector with carry is exactly the nested if-then-else next-
    iteration inference of Sec. 4.5.2 (the C emitter prints it as such).
    """

    dmas: List[DmaCgNode]
    loops: Tuple[Tuple[str, int], ...]

    def children(self) -> List[Node]:
        return list(self.dmas)

    def with_children(self, children: List[Node]) -> "PrefetchNode":
        return PrefetchNode(list(children), self.loops)  # type: ignore[arg-type]


@dataclass
class ZeroSpmNode(Node):
    """Zero-fill (a region of) an SPM buffer -- C-tile init and the
    lightweight padding of boundary tiles."""

    spm: str
    elems: Optional[int] = None  # None = whole buffer


# ---------------------------------------------------------------------------
# compute
# ---------------------------------------------------------------------------
#: how a logical tile flattens into a matrix: (row dim indices, col dim
#: indices), each in tile-dim order, flattened row-major.
MatMap = Tuple[Tuple[int, ...], Tuple[int, ...]]


@dataclass
class GemmOpNode(Node):
    """One tensorized GEMM primitive call: ``C[, +]= A @ B``.

    ``m``/``n``/``k`` are the (static) tile dims of this call site;
    ``*_map`` describe how each SPM tile reshapes into its matrix.
    ``variant`` is chosen by the vectorization/layout transformations.
    """

    m: int
    n: int
    k: int
    a_spm: str
    b_spm: str
    c_spm: str
    a_map: MatMap
    b_map: MatMap
    c_map: MatMap
    variant: KernelVariant
    accumulate: bool = True
    #: storage-order tile extents each operand buffer is viewed with at
    #: this call site (padded where boundary processing zero-extends the
    #: vectorized dimension); product over map dims reproduces m/n/k.
    a_lens: Tuple[int, ...] = ()
    b_lens: Tuple[int, ...] = ()
    c_lens: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) <= 0:
            raise IrError(f"non-positive GEMM dims ({self.m},{self.n},{self.k})")

    @property
    def flops(self) -> int:
        return 2 * self.m * self.n * self.k


@dataclass
class ComputeOpNode(Node):
    """A non-GEMM compute stage with a closed-form cost.

    Used for Winograd input/filter/output transforms and im2col packing
    arithmetic executed on the CPEs: ``cycles`` is the CG-level cycle
    cost, ``flops`` the useful arithmetic attributed to the stage.
    """

    name: str
    cycles: float
    flops: int = 0

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise IrError(f"negative cycles on compute op {self.name!r}")


# ---------------------------------------------------------------------------
# kernel root
# ---------------------------------------------------------------------------
@dataclass
class KernelNode(Node):
    """Root of one generated kernel: SPM plan + body.

    ``tensor_layouts`` records the main-memory layout (dim permutation)
    chosen for each tensor by the layout transformation; the runner
    packs user data accordingly before launch.
    """

    name: str
    allocs: List[AllocSpmNode] = field(default_factory=list)
    body: Node = field(default_factory=SeqNode)
    tensor_layouts: Dict[str, Tuple[int, ...]] = field(default_factory=dict)

    def children(self) -> List[Node]:
        return [*self.allocs, self.body]

    def with_children(self, children: List[Node]) -> "KernelNode":
        *allocs, body = children
        for a in allocs:
            if not isinstance(a, AllocSpmNode):
                raise IrError("kernel allocs must be AllocSpmNode")
        return KernelNode(self.name, list(allocs), body, dict(self.tensor_layouts))

    def alloc(self, name: str) -> AllocSpmNode:
        for a in self.allocs:
            if a.name == name:
                return a
        raise IrError(f"unknown SPM buffer {name!r} in kernel {self.name!r}")
