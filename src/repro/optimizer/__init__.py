"""IR optimizer passes (Sec. 4.5): DMA inference, latency hiding,
boundary processing, SPM planning."""

from .boundary import (
    PaddingCost,
    boundary_gemm_sites,
    lightweight_pad_sites,
    pad_tensor,
    pad_up,
    padded_shape,
    traditional_pad_cost,
    unpad_tensor,
)
from .dma_inference import (
    FlatTile,
    flatten_access,
    geometry_of,
    hoist_dma,
    infer_dma,
    storage_shapes,
)
from .memplan import per_cpe_bytes, plan_spm, spm_utilization
from .prefetch import (
    apply_prefetch,
    direct_stream_dmas,
    next_iteration_env,
    pipelined_loops,
)

__all__ = [
    "infer_dma",
    "hoist_dma",
    "geometry_of",
    "flatten_access",
    "FlatTile",
    "storage_shapes",
    "apply_prefetch",
    "pipelined_loops",
    "direct_stream_dmas",
    "next_iteration_env",
    "plan_spm",
    "per_cpe_bytes",
    "spm_utilization",
    "pad_up",
    "padded_shape",
    "pad_tensor",
    "unpad_tensor",
    "traditional_pad_cost",
    "PaddingCost",
    "boundary_gemm_sites",
    "lightweight_pad_sites",
]
