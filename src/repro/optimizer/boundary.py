"""Boundary processing (Sec. 4.5.3).

Two of the three mechanisms live elsewhere, inside the lowering (they
are semantics, not post-hoc rewrites):

* **parameter switching** -- ragged splits peel a boundary region whose
  DMA/GEMM calls simply use the smaller tail parameters;
* **lightweight zero-padding** -- a boundary tile below the vector
  width is padded *in SPM*: only the boundary data is copied, the pad
  lanes are zeroed, and the write-back stores only the valid region.

This module provides the analysis helpers the experiments use, plus the
**traditional zero-padding** baseline of Fig. 11: pre-pad whole tensors
in main memory (full copy through the DMA engine), run an aligned
kernel, and slice the output back.  Its cost is charged with the same
transaction-accurate DMA model the kernels use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..ir.nodes import GemmOpNode, KernelNode, ZeroSpmNode
from ..ir.visitors import find_all
from ..machine.config import MachineConfig, default_config


def pad_up(extent: int, multiple: int) -> int:
    """Smallest multiple of ``multiple`` that is >= ``extent``."""
    if multiple <= 0:
        raise ValueError("multiple must be positive")
    return -(-extent // multiple) * multiple


def padded_shape(shape: Tuple[int, ...], multiples: Tuple[int, ...]) -> Tuple[int, ...]:
    if len(shape) != len(multiples):
        raise ValueError("shape/multiples rank mismatch")
    return tuple(pad_up(s, m) for s, m in zip(shape, multiples))


@dataclass(frozen=True)
class PaddingCost:
    """Simulated cost of a traditional main-memory padding pass."""

    cycles: float
    bytes_copied: int


def traditional_pad_cost(
    shape: Tuple[int, ...],
    padded: Tuple[int, ...],
    config: Optional[MachineConfig] = None,
    *,
    round_trip: bool = True,
) -> PaddingCost:
    """Cycles to materialise a zero-padded copy of a tensor.

    The copy streams through SPM: every byte of the original is read
    and every byte of the *padded* buffer written (zero regions are
    written too -- that is precisely the overhead the lightweight
    scheme avoids).  ``round_trip=False`` models unpadding an output
    (read padded, write original).
    """
    cfg = config or default_config()
    elems_in = math.prod(shape)
    elems_out = math.prod(padded)
    read_bytes = (elems_out if not round_trip else elems_in) * cfg.dtype_bytes
    write_bytes = (elems_in if not round_trip else elems_out) * cfg.dtype_bytes
    total = read_bytes + write_bytes
    # chunked streaming: one latency per SPM-sized stage per direction
    stage_bytes = cfg.spm_bytes // 2 * cfg.cpes_per_cg
    stages = max(1, math.ceil(max(read_bytes, write_bytes) / stage_bytes))
    cycles = (
        2 * stages * (cfg.dma_latency_cycles + cfg.dma_issue_cycles)
        + total / cfg.dram_bytes_per_cycle
    )
    return PaddingCost(cycles=cycles, bytes_copied=total)


def pad_tensor(data: np.ndarray, padded: Tuple[int, ...]) -> np.ndarray:
    """Functional zero-pad of a tensor to the padded shape."""
    if len(padded) != data.ndim:
        raise ValueError("padded rank mismatch")
    out = np.zeros(padded, dtype=data.dtype)
    out[tuple(slice(0, s) for s in data.shape)] = data
    return out


def unpad_tensor(data: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Slice the valid region back out of a padded result."""
    return np.ascontiguousarray(data[tuple(slice(0, s) for s in shape)])


# ---------------------------------------------------------------------------
# analyses used by the Fig. 11 experiment and by tests
# ---------------------------------------------------------------------------
def boundary_gemm_sites(kernel: KernelNode) -> Dict[str, int]:
    """Count main-region vs boundary GEMM call sites.

    Sites are grouped by their (m, n, k) signature; the most frequent
    signature is the main tile, everything else is boundary handling
    produced by parameter switching / lightweight padding.
    """
    sites = find_all(kernel, GemmOpNode)
    by_sig: Dict[Tuple[int, int, int], int] = {}
    for g in sites:
        by_sig[(g.m, g.n, g.k)] = by_sig.get((g.m, g.n, g.k), 0) + 1
    if not by_sig:
        return {"main": 0, "boundary": 0}
    main_sig = max(by_sig, key=lambda s: by_sig[s])
    main = by_sig[main_sig]
    return {"main": main, "boundary": sum(by_sig.values()) - main}


def lightweight_pad_sites(kernel: KernelNode) -> int:
    """Number of leaves that zero-pad an operand tile (ZeroSpm on a
    non-C buffer marks the lightweight path)."""
    return sum(
        1 for z in find_all(kernel, ZeroSpmNode) if z.spm != "spm_c"
    )
