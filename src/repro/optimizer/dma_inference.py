"""DMA inference (Sec. 4.5.1).

Users never write DMA in the DSL; the lowering emits CG-level tile
transfers and this pass makes them *hardware-real*:

* the per-CPE descriptor geometry (offset/block/stride per (rid, cid))
  is derived from the tile access and the tensor's chosen main-memory
  layout, exactly as the paper's DMA_CG -> DMA_CPE derivation;
* DMA nodes are hoisted "as far as possible from gemm_op": a transfer
  whose access does not depend on a loop's variable moves in front of
  that loop, eliminating redundant copies (weights hoisted out of
  spatial loops, input tiles out of output-channel loops, ...).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..dsl.compute import ComputeDef
from ..errors import IrError
from ..ir.nodes import (
    DmaCgNode,
    DmaGeometry,
    ForNode,
    KernelNode,
    Node,
    SeqNode,
    TileAccess,
)
from ..ir.visitors import transform, walk
from ..machine.config import MachineConfig, default_config
from ..machine.dma import MEM_TO_SPM


@dataclass(frozen=True)
class FlatTile:
    """A tile access flattened against its tensor's storage layout.

    ``chunk_elems`` is the contiguous innermost run; ``outer_lengths``/
    ``outer_strides`` (in elements) generate the chunk start addresses.
    """

    chunk_elems: int
    outer_lengths: Tuple[int, ...]
    outer_strides: Tuple[int, ...]

    @property
    def n_chunks(self) -> int:
        return math.prod(self.outer_lengths) if self.outer_lengths else 1

    @property
    def elems(self) -> int:
        return self.n_chunks * self.chunk_elems

    def chunk_offsets(self) -> np.ndarray:
        """Element offsets of every chunk start (relative to the tile's
        base element), fully vectorised."""
        out = np.zeros(1, dtype=np.int64)
        for length, stride in zip(self.outer_lengths, self.outer_strides):
            steps = np.arange(length, dtype=np.int64) * stride
            out = (out[:, None] + steps[None, :]).reshape(-1)
        return out


def flatten_access(
    lengths: Tuple[int, ...], storage_shape: Tuple[int, ...]
) -> FlatTile:
    """Split a rectangular access into (outer dims) x (contiguous run).

    The innermost run absorbs every trailing dimension the access
    covers completely -- the rule that makes layout transformation
    matter: a layout placing the tile's long dimension last yields few
    large blocks, a bad one yields many small (transaction-wasting)
    blocks.
    """
    if len(lengths) != len(storage_shape):
        raise IrError(
            f"access rank {len(lengths)} != storage rank {len(storage_shape)}"
        )
    strides = [1] * len(storage_shape)
    for i in range(len(storage_shape) - 2, -1, -1):
        strides[i] = strides[i + 1] * storage_shape[i + 1]

    # absorb fully-covered trailing dims into the chunk: dim j joins the
    # contiguous run (partially), and deeper dims only while they cover
    # their full storage extent
    j = len(lengths) - 1
    chunk = lengths[j] if lengths else 1
    while j > 0 and lengths[j] == storage_shape[j]:
        j -= 1
        chunk *= lengths[j]
    outer_lengths = tuple(lengths[:j])
    outer_strides = tuple(strides[:j])
    return FlatTile(
        chunk_elems=chunk,
        outer_lengths=outer_lengths,
        outer_strides=outer_strides,
    )


def geometry_of(
    access: TileAccess,
    storage_shape: Tuple[int, ...],
    config: Optional[MachineConfig] = None,
) -> DmaGeometry:
    """Static DMA geometry of a tile access (descriptor metadata).

    ``stride_bytes`` is the uniform inter-block gap when one exists
    (single varying outer dimension); multi-level strided accesses are
    issued as one descriptor per outer slice, reflected in
    ``n_descriptors``.
    """
    cfg = config or default_config()
    flat = flatten_access(access.lengths, storage_shape)
    block_bytes = flat.chunk_elems * cfg.dtype_bytes
    n_blocks = flat.n_chunks
    if not flat.outer_lengths:
        stride = 0
        descs = 1
    elif len(flat.outer_lengths) == 1:
        stride = flat.outer_strides[0] * cfg.dtype_bytes - block_bytes
        descs = 1
    else:
        # innermost outer dim is uniform; each higher-level slice needs
        # its own descriptor
        stride = flat.outer_strides[-1] * cfg.dtype_bytes - block_bytes
        descs = math.prod(flat.outer_lengths[:-1])
    if stride < 0:
        raise IrError(
            f"overlapping blocks in access of {access.buffer!r}: "
            f"block {block_bytes}B exceeds its stride"
        )
    return DmaGeometry(
        n_blocks=n_blocks,
        block_bytes=block_bytes,
        stride_bytes=stride,
        n_descriptors=descs,
    )


def infer_dma(
    kernel: KernelNode,
    compute: ComputeDef,
    config: Optional[MachineConfig] = None,
    *,
    hoist: bool = True,
) -> KernelNode:
    """Fill per-CPE geometry on every DMA node and hoist invariant
    transfers outward.  Returns a new kernel.

    ``hoist=False`` keeps every transfer at its gemm_op (the ablation
    baseline for the "inject DMA nodes as far as possible from
    gemm_op" redundant-copy elimination of Sec. 4.5.1).
    """
    cfg = config or default_config()
    shapes = storage_shapes(kernel, compute)

    def annotate(node: Node):
        if isinstance(node, DmaCgNode) and node.geometry is None:
            geo = geometry_of(node.access, shapes[node.access.buffer], cfg)
            return DmaCgNode(
                access=node.access,
                spm=node.spm,
                direction=node.direction,
                reply=node.reply,
                geometry=geo,
                phase_var=node.phase_var,
            )
        return None

    annotated = transform(kernel, annotate)
    assert isinstance(annotated, KernelNode)
    if not hoist:
        return annotated
    return hoist_dma(annotated)


def hoist_dma(kernel: KernelNode) -> KernelNode:
    """Hoist loop-invariant mem->SPM transfers out of their loops (the
    redundant-copy elimination half of Sec. 4.5.1), as its own step so
    the pass pipeline can instrument annotation and hoisting apart."""
    hoisted = transform(kernel, _hoist_out_of_loop)
    assert isinstance(hoisted, KernelNode)
    return hoisted


def storage_shapes(
    kernel: KernelNode, compute: ComputeDef
) -> Dict[str, Tuple[int, ...]]:
    """Main-memory storage shape of each tensor under the kernel's
    chosen layout permutation."""
    shapes: Dict[str, Tuple[int, ...]] = {}
    for name in compute.tensors:
        logical = compute.tensor_shape(name)
        perm = kernel.tensor_layouts.get(name, tuple(range(len(logical))))
        shapes[name] = tuple(logical[i] for i in perm)
    return shapes


# ---------------------------------------------------------------------------
# hoisting
# ---------------------------------------------------------------------------
def _hoist_out_of_loop(node: Node) -> Optional[Node]:
    """If every mem->SPM transfer into a buffer inside this loop is the
    same loop-invariant access, replace them with a single transfer
    before the loop."""
    if not isinstance(node, ForNode):
        return None
    in_dmas: Dict[str, List[DmaCgNode]] = {}
    bound_inside = {node.var}
    for n in walk(node.body):
        if isinstance(n, ForNode):
            bound_inside.add(n.var)
        if isinstance(n, DmaCgNode) and n.direction == MEM_TO_SPM:
            in_dmas.setdefault(n.spm, []).append(n)

    hoistable: List[DmaCgNode] = []
    for spm, dmas in in_dmas.items():
        first = dmas[0]
        if first.access.variables() & bound_inside:
            continue
        if any(d.access != first.access for d in dmas):
            continue
        hoistable.append(first)
    if not hoistable:
        return None
    names = {d.spm for d in hoistable}

    def strip(n: Node) -> Optional[Node]:
        if isinstance(n, SeqNode):
            kept = [
                c
                for c in n.body
                if not (
                    isinstance(c, DmaCgNode)
                    and c.direction == MEM_TO_SPM
                    and c.spm in names
                )
            ]
            if len(kept) != len(n.body):
                return SeqNode(kept)
        return None

    new_body = transform(node.body, strip)
    return SeqNode(
        [*hoistable, ForNode(node.var, node.extent, new_body, node.pipelined)]
    )
