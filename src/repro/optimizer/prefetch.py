"""Hiding memory access latency: automatic double buffering (Sec. 4.5.2).

swATOP prefetches the next iteration's tiles while the current
iteration computes.  The pass:

* finds every loop that *directly* issues mem->SPM transfers (not
  through a nested loop) and also performs tensorized compute, and
  marks it ``pipelined``;
* verifies the streamed SPM buffers are double-buffered (two identical
  copies: one computing, one filling -- the allocation the lowering
  reserved);
* asserts the prefetched accesses are affine in the loop variable,
  which is the paper's applicability condition ("readily applicable to
  loop nests in which the data access is a function of the enclosing
  loop variables").

The executor gives a ``pipelined`` loop its overlap semantics: the
transfers for iteration ``i+1`` are issued when iteration ``i`` starts
computing, and iteration ``i+1`` begins by waiting on them.  The C
emitter prints the equivalent reply-word/if-then-else code.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..errors import IrError
from ..ir.nodes import (
    DmaCgNode,
    ForNode,
    GemmOpNode,
    KernelNode,
    Node,
)
from ..ir.visitors import transform, walk
from ..machine.dma import MEM_TO_SPM


def direct_stream_dmas(loop: ForNode) -> List[DmaCgNode]:
    """The mem->SPM transfers issued by this loop itself (transfers in
    nested loops belong to those loops' pipelines)."""

    out: List[DmaCgNode] = []

    def visit(node: Node) -> None:
        if isinstance(node, DmaCgNode) and node.direction == MEM_TO_SPM:
            out.append(node)
            return
        if isinstance(node, ForNode):
            return  # stop at nested loops
        for child in node.children():
            visit(child)

    visit(loop.body)
    return out


def _has_direct_compute(loop: ForNode) -> bool:
    def visit(node: Node) -> bool:
        if isinstance(node, GemmOpNode):
            return True
        if isinstance(node, ForNode):
            return any(visit(c) for c in node.children())
        return any(visit(c) for c in node.children())

    return visit(loop.body)


def apply_prefetch(kernel: KernelNode) -> KernelNode:
    """Mark streaming loops as pipelined; returns a new kernel.

    Raises :class:`IrError` if a streamed buffer was not allocated with
    double-buffer space -- the capacity reservation and the overlap
    semantics must agree or the simulated kernel would be reading a
    buffer while the DMA engine overwrites it.
    """
    double_buffered: Set[str] = {
        a.name for a in kernel.allocs if a.double_buffered
    }

    def mark(node: Node) -> Optional[Node]:
        if not isinstance(node, ForNode) or node.pipelined:
            return None
        dmas = direct_stream_dmas(node)
        if not dmas or not _has_direct_compute(node):
            return None
        # double buffering gives each streamed buffer exactly two
        # copies: one filling, one computing.  A body that fills the
        # same buffer twice per iteration (e.g. a peeled K-tail after a
        # collapsed K loop) has no free copy to prefetch into -- issuing
        # both at iteration start would clobber the first tile before
        # its GEMM consumes it.
        per_buffer: dict = {}
        for dma in dmas:
            per_buffer[dma.spm] = per_buffer.get(dma.spm, 0) + 1
        if any(count > 1 for count in per_buffer.values()):
            return None
        # a nested pipelined loop already alternates the phases of any
        # buffer it streams; pipelining this loop onto the same buffers
        # would race the two pipelines' phase assignments (each buffer
        # has exactly two copies).  The transform runs post-order, so
        # inner loops are marked first and win.
        mine = {d.spm for d in dmas}
        for inner in walk(node.body):
            if isinstance(inner, ForNode) and inner.pipelined:
                streamed = {d.spm for d in direct_stream_dmas(inner)}
                if streamed & mine:
                    return None
        for dma in dmas:
            if dma.spm not in double_buffered:
                raise IrError(
                    f"loop {node.var!r} streams into {dma.spm!r} which has "
                    "no double-buffer reservation; lower with "
                    "LoweringOptions(double_buffer=True)"
                )
        if not any(node.var in dma.access.variables() for dma in dmas):
            # every transfer is loop-invariant: nothing to stream (the
            # hoisting pass removes such loops' transfers when it can)
            return None
        return ForNode(node.var, node.extent, node.body, pipelined=True)

    out = transform(kernel, mark)
    assert isinstance(out, KernelNode)
    return out


def pipelined_loops(kernel: KernelNode) -> List[ForNode]:
    return [n for n in walk(kernel) if isinstance(n, ForNode) and n.pipelined]


def next_iteration_env(
    loops: List[tuple],
    env: dict,
) -> Optional[dict]:
    """Advance an index vector with carry: the executable form of the
    paper's nested if-then-else next-iteration inference.

    ``loops`` lists (var, extent) innermost-first.  Returns the next
    environment, or ``None`` when the nest is exhausted.
    """
    out = dict(env)
    for var, extent in loops:
        out[var] = out.get(var, 0) + 1
        if out[var] < extent:
            return out
        out[var] = 0
    return None
