"""SPM memory planning: the coalesced-region allocation of Sec. 4.7.

The code generator "analyzes the memory usage information in the IR and
allocates all buffers into a single coalesced region"; this pass builds
that plan from the kernel's SPM allocations, assigning every buffer its
offset (double-buffered buffers get two back-to-back copies) and
rejecting kernels that overflow the 64 KB scratch pad.
"""

from __future__ import annotations

import math
from typing import Optional

from ..errors import SpmCapacityError
from ..ir.nodes import AllocSpmNode, KernelNode
from ..machine.config import MachineConfig, default_config
from ..machine.spm import SpmAllocator, SpmBuffer, SpmPlan


def per_cpe_bytes(alloc: AllocSpmNode, config: Optional[MachineConfig] = None) -> int:
    """SPM footprint of one copy of a tile buffer on one CPE.

    Distributed tiles are split 8x8 across the cluster over their 2-D
    matrix view (leading dim x rest); the boundary CPEs' rounded-up
    share is what must fit.
    """
    cfg = config or default_config()
    if not alloc.distributed:
        return alloc.elems * cfg.dtype_bytes
    # the 8x8 distribution follows the DMA flattening: (all outer dims)
    # x (innermost dim) split over cluster rows x columns
    rows = math.prod(alloc.shape[:-1]) if len(alloc.shape) > 1 else 1
    cols = alloc.shape[-1] if alloc.shape else 1
    return (
        math.ceil(rows / cfg.cluster_rows)
        * math.ceil(cols / cfg.cluster_cols)
        * cfg.dtype_bytes
    )


def plan_spm(kernel: KernelNode, config: Optional[MachineConfig] = None) -> SpmPlan:
    """Build the coalesced SPM plan for a kernel.

    Raises :class:`SpmCapacityError` on overflow (the scheduler should
    have pruned such candidates; reaching here means an optimizer pass
    grew the footprint illegally).
    """
    cfg = config or default_config()
    buffers = [
        SpmBuffer(
            name=a.name,
            bytes_per_cpe=per_cpe_bytes(a, cfg),
            double_buffered=a.double_buffered,
        )
        for a in kernel.allocs
    ]
    return SpmAllocator(cfg).plan(buffers)


def spm_utilization(kernel: KernelNode, config: Optional[MachineConfig] = None) -> float:
    return plan_spm(kernel, config).utilization
