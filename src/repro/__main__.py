"""Command-line entry point: regenerate any paper experiment.

    python -m repro <experiment> [--scale smoke|default|full]

Experiments: fig5 fig6 fig7 fig8 fig9 fig10 fig11 tab1 tab2 tab3, or
``all``.  Output is the same table the corresponding benchmark prints,
with the paper's expected values in the notes.
"""

from __future__ import annotations

import argparse
import sys
import time

from .harness import experiments as E
from .harness.scales import SCALES, get_scale


def _tables(name: str, scale):
    if name == "fig5":
        yield E.fig5_implicit_conv(scale=scale).table()
    elif name == "fig6":
        yield E.fig6_winograd_conv(scale=scale).table()
    elif name == "fig7":
        yield E.fig7_explicit_conv(scale=scale).table()
    elif name in ("tab1", "fig8"):
        res = E.tab1_fig8_versatility(scale=scale)
        yield res.tab1() if name == "tab1" else res.fig8()
    elif name == "tab2":
        yield E.tab2_gemm(scale=scale).table()
    elif name == "tab3":
        yield E.tab3_tuning_time(scale=scale).table()
    elif name == "fig9":
        yield E.fig9_model_accuracy(scale=scale).table()
    elif name == "fig10":
        yield E.fig10_prefetch(scale=scale).table()
    elif name == "fig11":
        yield E.fig11_padding(scale=scale).table()
    else:
        raise SystemExit(f"unknown experiment {name!r}")


EXPERIMENTS = (
    "fig5", "fig6", "fig7", "tab1", "fig8",
    "tab2", "tab3", "fig9", "fig10", "fig11",
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate swATOP paper experiments on the "
                    "simulated SW26010.",
    )
    parser.add_argument(
        "experiment",
        choices=(*EXPERIMENTS, "all"),
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="evaluation scale (default: $REPRO_SCALE or 'default')",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="evaluate tuning candidates on N worker processes "
             "(default: serial; every tuner in the run inherits this)",
    )
    parser.add_argument(
        "--no-prune",
        action="store_true",
        help="disable branch-and-bound candidate pruning (the escape "
             "hatch: results are bit-identical either way, pruning "
             "only skips lowering/scoring of provably-losing "
             "candidates)",
    )
    parser.add_argument(
        "--eval-cache",
        default=None,
        metavar="PATH",
        help="persist evaluation scores to PATH (versioned JSON) and "
             "warm-start from it, so repeated runs skip re-measuring "
             "strategies scored in earlier processes",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="checkpoint every branch-and-bound search into DIR "
             "(one versioned JSON sidecar per search, written "
             "atomically at batch boundaries)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="restore matching checkpoints from the --checkpoint "
             "directory before searching; an interrupted run finishes "
             "with a bit-identical result",
    )
    parser.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC",
        help="deterministic fault injection for resilience testing, "
             "e.g. 'seed=7,crash=0.02,corrupt=0.1,poison=ab12'; sites: "
             "crash/exception/hang/corrupt rates in [0,1], poison= a "
             "candidate-digest hex prefix that always fails "
             "(see repro.faults.FaultPlan.parse)",
    )
    parser.add_argument(
        "--validate",
        nargs="?",
        const="winner",
        choices=("off", "winner", "all"),
        default=None,
        metavar="MODE",
        help="differentially validate tuned kernels against the NumPy "
             "reference: 'winner' (the bare flag) checks each tuner's "
             "returned winner, 'all' checks every measured candidate, "
             "'off' disables (default: off, or 'all' under "
             "REPRO_SANITIZE=1)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run every simulated kernel under the machine sanitizer "
             "(shadow-state checks for SPM/memory out-of-bounds DMA, "
             "uninitialized reads, double-buffer phase races and "
             "register-communication misuse); equivalent to "
             "REPRO_SANITIZE=1",
    )
    parser.add_argument(
        "--dump-ir",
        nargs="?",
        const="all",
        default=None,
        metavar="PASS",
        help="print kernel IR around pipeline passes to stderr "
             "(no value: every pass; with a value: only that pass, "
             "e.g. --dump-ir prefetch); only the first couple of "
             "pipeline runs are dumped to keep sweeps readable",
    )
    args = parser.parse_args(argv)
    if args.workers is not None:
        from .engine import set_default_workers

        set_default_workers(args.workers)
    if args.no_prune:
        from .engine import set_default_prune

        set_default_prune(False)
    if args.resume and args.checkpoint is None:
        parser.error("--resume requires --checkpoint DIR")
    if args.checkpoint is not None:
        from .engine import set_default_checkpoint

        set_default_checkpoint(args.checkpoint, resume=args.resume)
    if args.sanitize:
        from .machine.sanitizer import set_sanitize

        set_sanitize(True)
    if args.validate is not None:
        from .engine import set_default_validate

        set_default_validate(args.validate)
    if args.inject_faults is not None:
        from .faults import FaultPlan, set_fault_plan

        try:
            plan = FaultPlan.parse(args.inject_faults)
        except ValueError as exc:
            parser.error(f"--inject-faults: {exc}")
        set_fault_plan(plan)
        print(f"[fault injection: {plan.describe()}]", file=sys.stderr)
    eval_store = None
    if args.eval_cache is not None:
        from .engine import set_eval_cache

        eval_store = set_eval_cache(args.eval_cache)
    if args.dump_ir is not None:
        from .passes import set_dump_ir

        set_dump_ir(args.dump_ir)
    scale = get_scale(args.scale)
    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in names:
        t0 = time.perf_counter()
        for table in _tables(name, scale):
            print(table.render())
        print(f"[{name}: {time.perf_counter() - t0:.1f}s]\n")
    if eval_store is not None:
        eval_store.flush()
        print(f"[eval cache: {eval_store.describe()}]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
